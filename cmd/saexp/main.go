// Command saexp regenerates the tables and figures of the paper's
// evaluation (§5) on the simulated machine, printing measured values next
// to the paper's published ones.
//
// Usage:
//
//	saexp -exp table1     # Table 1: thread operation latencies
//	saexp -exp table4     # Table 4: + FastThreads on scheduler activations
//	saexp -exp csablation # §5.1: explicit-flag critical sections
//	saexp -exp upcall     # §5.2: signal-wait through the kernel
//	saexp -exp fig1       # Figure 1: speedup vs processors
//	saexp -exp fig2       # Figure 2: execution time vs memory
//	saexp -exp fig2tuned  # Figure 2 extra series with tuned upcalls
//	saexp -exp table5     # Table 5: multiprogramming
//	saexp -exp alloc      # §4.1 ablation: allocation policy
//	saexp -exp hysteresis # §4.2 ablation: idle hysteresis
//	saexp -exp all        # everything
//
// Any single experiment run can additionally export a Chrome/Perfetto trace:
//
//	saexp -exp fig1 -trace-out /tmp/fig1.json   # load in chrome://tracing or ui.perfetto.dev
//
// Scenario mode runs a declarative spec — a built-in by name, a JSON file,
// or stdin — through the same compiled pipeline the batteries use:
//
//	saexp -list                    # all built-in scenarios and experiments, one line each
//	saexp -scenario fig1           # a built-in spec by name
//	saexp -scenario my.json        # a custom spec from a file
//	cat my.json | saexp -scenario -  # ... or from stdin
//	saexp -scenario chaos64 -checkpoint sweep.json   # any compiled sweep can checkpoint/resume
//
// A checkpoint file is keyed by the spec that wrote it: re-invoking the same
// spec resumes after the jobs already done, while a checkpoint written by a
// different spec is rejected instead of silently merged.
//
// Chaos mode (separate from -exp):
//
//	saexp -chaos              # 64-seed fault-injection sweep, auditor armed
//	saexp -chaos -seeds 256   # more seeds
//	saexp -chaos -first 100 -seeds 64    # a different seed range (-first-seed works too)
//	saexp -chaos -workers 8   # pool width (default GOMAXPROCS; 1 = sequential)
//	saexp -chaos -checkpoint sweep.json  # resumable: re-invoking skips completed seeds
//	saexp -chaos -ablate nogrant    # demo: auditor catches a broken allocator
//	saexp -chaos -ablate dropevent  # demo: auditor catches dropped events
//
// Each sweep worker owns one warm run context recycled across its seeds, so
// wide sweeps pay construction once per worker, not once per seed; per-seed
// results are byte-identical to cold runs either way. With -checkpoint the
// sweep streams progress to a JSON file and a re-invocation with the same
// -first-seed resumes after the seeds already done (growing -seeds extends a
// finished sweep).
//
// Chaos mode exits nonzero if any seed fails, so it can gate CI.
//
// Any mode can swap the per-run simulation engine; results are byte-identical,
// only host wall-clock changes:
//
//	saexp -exp fig2 -engine par -lps 4   # conservative PDES engine, 4 LPs per run
//	saexp -chaos -engine par             # the 64-seed sweep through the PDES engine
//
// Any invocation can be profiled with the standard runtime/pprof writers
// (`make profile` wraps the chaos-sweep capture):
//
//	saexp -chaos -seeds 16 -workers 1 -cpuprofile cpu.pprof -memprofile mem.pprof
//	go tool pprof -http=: cpu.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"

	"schedact/internal/core"
	"schedact/internal/exp"
	"schedact/internal/fleet"
	"schedact/internal/scenario"
	"schedact/internal/stats"
)

func main() { os.Exit(run()) }

// run is the real main, returning the exit code instead of calling os.Exit
// so the deferred profile writers always flush.
func run() int {
	which := flag.String("exp", "all", "experiment to run (table1, table4, csablation, upcall, breakeven, fig1, fig2, fig2tuned, table5, alloc, hysteresis, all)")
	csvOut := flag.Bool("csv", false, "emit figure series as CSV instead of tables (fig1/fig2 only)")
	statsOut := flag.Bool("stats", false, "dump each simulation run's counter registry as it finishes")
	chaosMode := flag.Bool("chaos", false, "run the seeded fault-injection sweep instead of an experiment")
	seeds := flag.Int64("seeds", 64, "number of chaos seeds to sweep (with -chaos)")
	firstSeed := flag.Int64("first-seed", 1, "first chaos seed (with -chaos; -first is an alias)")
	flag.Int64Var(firstSeed, "first", 1, "alias for -first-seed")
	checkpoint := flag.String("checkpoint", "", "sweep progress file (with -chaos or -scenario): resumes the same spec, extends it when the seed range grows; a different spec's checkpoint is rejected")
	scenarioSrc := flag.String("scenario", "", "run a declarative scenario: a built-in name (see -list), a spec JSON file, or - for stdin")
	shard := flag.String("shard", "", "with -scenario on a mix sweep: run one shard i/n of the seed range (e.g. -shard 2/4); the shard checkpoints under its own key and merges back with -merge")
	shardExec := flag.Int("shard-exec", 0, "with -scenario on a mix sweep: split the sweep into n shards, run each in its own child process (bounded by -shard-parallel, crashed shards resumed from their checkpoints), then merge and report")
	shardParallel := flag.Int("shard-parallel", 0, "concurrent shard processes with -shard-exec (0 = auto: min(shards, CPUs))")
	mergeMode := flag.Bool("merge", false, "merge finished shard checkpoint files (positional arguments) into one sweep report and exit nonzero if any merged seed failed")
	results := flag.String("results", "", "with -scenario on a mix sweep: append one JSON line per seed to this file (JSONL; see DESIGN.md §9)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "results between checkpoint writes with -checkpoint (0 = default 16; shard drivers lower it so a killed shard loses less progress)")
	list := flag.Bool("list", false, "list the built-in scenarios and experiments, one line each, and exit")
	ablate := flag.String("ablate", "", "run one deliberately broken kernel under the auditor: nogrant or dropevent (with -chaos)")
	workers := flag.Int("workers", 0, "parallel run pool width for sweeps and experiment batteries (1 = sequential; 0 = auto: one per CPU, divided by the per-run goroutine count with -engine par)")
	engine := flag.String("engine", "seq", "simulation engine per run: seq (reference sequential) or par (conservative PDES; byte-identical results, queue work spread over -lps goroutines)")
	lps := flag.Int("lps", 2, "logical processes per run with -engine par")
	traceOut := flag.String("trace-out", "", "with -exp fig1: run the traced Figure 1 smoke configuration and write Chrome trace_event JSON to this path")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole invocation to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an allocation heap profile to this file at exit (go tool pprof)")
	flag.Parse()

	switch *engine {
	case "seq":
	case "par":
		if *lps < 1 {
			fmt.Fprintf(os.Stderr, "-lps %d: need at least one logical process\n", *lps)
			return 2
		}
		exp.EngineLPs = *lps
	default:
		fmt.Fprintf(os.Stderr, "unknown engine %q (want seq or par)\n", *engine)
		return 2
	}
	// Scenario mode resolves its own width (explicit flag > spec hint >
	// auto), so remember whether -workers was explicit before normalizing.
	rawWorkers := *workers
	if *workers <= 0 {
		// Fleet-level and intra-run parallelism multiply: with the PDES
		// engine each run occupies 1 driver + lps LP goroutines, so divide
		// the cores instead of oversubscribing them.
		*workers = fleet.WorkersFor(1 + exp.EngineLPs)
	}
	exp.Workers = *workers

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects so the heap profile is stable
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *traceOut != "" {
		if *which != "fig1" {
			fmt.Fprintf(os.Stderr, "-trace-out currently supports -exp fig1 only (got %q)\n", *which)
			return 2
		}
		return runTraceOut(*traceOut)
	}

	if *list {
		return runList()
	}
	if *mergeMode {
		return runMerge(flag.Args())
	}
	if *shardExec > 0 {
		if *scenarioSrc == "" {
			fmt.Fprintln(os.Stderr, "-shard-exec needs -scenario")
			return 2
		}
		if *shard != "" {
			fmt.Fprintln(os.Stderr, "-shard-exec and -shard are mutually exclusive (the driver assigns shards itself)")
			return 2
		}
		return runShardExec(*scenarioSrc, *shardExec, shardExecOpts{
			checkpoint: *checkpoint,
			results:    *results,
			workers:    rawWorkers,
			engine:     *engine,
			lps:        *lps,
			parallel:   *shardParallel,
			every:      *checkpointEvery,
		})
	}
	if *scenarioSrc != "" {
		return runScenario(*scenarioSrc, *shard, exp.RunOptions{
			Workers:         rawWorkers,
			Checkpoint:      *checkpoint,
			CheckpointEvery: *checkpointEvery,
			Results:         *results,
		})
	}

	if *chaosMode {
		return runChaos(*seeds, *firstSeed, *workers, *ablate, *checkpoint)
	}

	out := os.Stdout
	if *statsOut {
		// Give each run a trace stream feeding the latency deriver, so the
		// dumped registries include latency.* p50/p90/p99.
		exp.StatsTrace = true
		// Runs close concurrently under the fleet pool, so the sink must
		// serialize its writes; each registry is still private to its run.
		var mu sync.Mutex
		exp.SetStatsSink(func(label string, reg *stats.Registry) {
			if reg.Len() == 0 {
				return
			}
			if label == "" {
				label = "(unlabelled run)"
			}
			mu.Lock()
			defer mu.Unlock()
			fmt.Fprintf(out, "-- stats: %s --\n", label)
			reg.Dump(out)
			fmt.Fprintln(out)
		})
	}
	ran := false
	want := func(name string) bool {
		if *which == "all" || *which == name {
			ran = true
			return true
		}
		return false
	}

	if want("table1") {
		exp.RenderMicro(out, "Table 1: Thread Operation Latencies (µsec)", exp.Table1())
	}
	if want("table4") {
		exp.RenderMicro(out, "Table 4: Thread Operation Latencies (µsec), with Scheduler Activations", exp.Table4())
	}
	if want("csablation") {
		r := exp.CSAblation()
		exp.RenderMicro(out, "§5.1 ablation: critical-section marking", []exp.MicroRow{r.ZeroOverhead, r.ExplicitFlag})
	}
	if want("upcall") {
		exp.RenderUpcall(out, exp.UpcallLatency())
	}
	if want("breakeven") {
		exp.RenderBreakEven(out, exp.BreakEven())
	}
	if want("fig1") {
		if *csvOut {
			r := exp.Figure1()
			if err := exp.WriteCSV(out, "processors", r.Series); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		} else {
			fmt.Fprintln(out, "running Figure 1 (19 application runs)...")
			exp.RenderFigure1(out, exp.Figure1())
		}
	}
	if want("fig2") {
		if *csvOut {
			r := exp.Figure2()
			if err := exp.WriteCSV(out, "pct_memory", r.Series); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		} else {
			fmt.Fprintln(out, "running Figure 2 (21 application runs)...")
			exp.RenderFigure2(out, exp.Figure2())
		}
	}
	if want("fig2tuned") {
		fmt.Fprintln(out, "running the tuned-upcall Figure 2 series...")
		s := exp.Figure2Tuned()
		fmt.Fprintf(out, "%-6s %28s\n", "%mem", s.System)
		for _, p := range s.Points {
			fmt.Fprintf(out, "%-6.0f %28.2f\n", p.X, p.Y)
		}
		fmt.Fprintln(out)
	}
	if want("table5") {
		fmt.Fprintln(out, "running Table 5 (6 application runs + sequential)...")
		exp.RenderTable5(out, exp.Table5())
	}
	if want("alloc") || want("hysteresis") {
		var a exp.AllocatorAblationResult
		var h exp.HysteresisAblationResult
		if *which == "all" || *which == "alloc" {
			a = exp.AllocatorAblation()
		}
		if *which == "all" || *which == "hysteresis" {
			h = exp.HysteresisAblation()
		}
		exp.RenderAblations(out, a, h)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *which)
		flag.Usage()
		return 2
	}
	return 0
}

// runTraceOut runs the traced Figure 1 smoke configuration, writes the
// Chrome trace_event export, and re-reads it through the JSON parser so a
// malformed export fails loudly here rather than inside the browser.
func runTraceOut(path string) int {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	n, err := exp.TraceFigure1(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "exported trace does not parse: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s: %d records, %d trace events, %d bytes (load in chrome://tracing or ui.perfetto.dev)\n",
		path, n, len(doc.TraceEvents), len(raw))
	return 0
}

// runList prints every built-in scenario and micro experiment with a
// one-line description.
func runList() int {
	fmt.Println("built-in scenarios (saexp -scenario NAME; also accepts a spec JSON file or - for stdin):")
	for _, s := range scenario.Builtins() {
		fmt.Printf("  %-12s %s\n", s.Name, s.Description)
	}
	fmt.Println()
	fmt.Println("micro experiments (saexp -exp NAME; no scenario spec — these measure primitive latencies):")
	for _, e := range [][2]string{
		{"table1", "Table 1: thread operation latencies (µs), kernel threads vs orig FastThreads"},
		{"table4", "Table 4: thread operation latencies (µs) with scheduler activations"},
		{"csablation", "§5.1 ablation: zero-overhead critical sections vs explicit flagging"},
		{"upcall", "§5.2: signal-wait latency through the kernel (upcall round trip)"},
		{"breakeven", "break-even work quantum where scheduler activations beat kernel threads"},
		{"all", "every experiment and application battery in sequence"},
	} {
		fmt.Printf("  %-12s %s\n", e[0], e[1])
	}
	return 0
}

// loadSpec resolves a scenario source: "-" for stdin, a built-in name, or
// a spec JSON file.
func loadSpec(src string) (scenario.Spec, error) {
	if src == "-" {
		return scenario.Read(os.Stdin)
	}
	if builtin, ok := scenario.Lookup(src); ok {
		return builtin, nil
	}
	return scenario.LoadFile(src)
}

// parseShard parses a -shard value "i/n" into its 1-based index and count.
func parseShard(s string) (index, of int, err error) {
	if _, err := fmt.Sscanf(s, "%d/%d", &index, &of); err != nil || s != fmt.Sprintf("%d/%d", index, of) {
		return 0, 0, fmt.Errorf("-shard %q: want i/n (e.g. 2/4)", s)
	}
	return index, of, nil
}

// runScenario compiles and runs one declarative scenario: a built-in by
// name, a spec JSON file, or stdin — restricted to one shard when -shard
// is given. Exit code 0 only if every job (and, for chaos programs, every
// seed) passed.
func runScenario(src, shard string, opt exp.RunOptions) int {
	sp, err := loadSpec(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if shard != "" {
		index, of, err := parseShard(shard)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		sp = scenario.WithShard(sp, index, of)
	}
	pr, err := exp.RunSpec(os.Stdout, sp, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if pr.Sweep != nil && pr.Sweep.Failed > 0 {
		return 1
	}
	return 0
}

// runChaos executes the chaos sweep (or a single ablated demonstration run)
// and returns the process exit code: 0 only if every seed passed.
func runChaos(seeds, first int64, workers int, ablate, checkpoint string) int {
	out := os.Stdout
	switch ablate {
	case "":
		ag, err := exp.ChaosSweepOpts(out, first, seeds, exp.SweepOptions{Workers: workers, Checkpoint: checkpoint})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if ag.Failed > 0 {
			return 1
		}
		return 0
	case "nogrant", "dropevent":
		mutate := func(k *core.Kernel) { k.AblateNoGrant = true }
		what := "rebalance grant phase disabled (AblateNoGrant)"
		if ablate == "dropevent" {
			mutate = func(k *core.Kernel) { k.AblateDropEvent = true }
			what = "delayed-event delivery dropped (AblateDropEvent)"
		}
		fmt.Fprintf(out, "chaos ablation demo: %s, seed %d\n", what, first)
		r := exp.RunChaosSeedAblated(first, mutate)
		if r.OK() {
			fmt.Fprintln(out, "UNEXPECTED: the broken kernel escaped the auditor")
			return 1
		}
		fmt.Fprintf(out, "caught: %d/%d threads finished, %d violation(s)\n", r.Finished, r.Total, len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprint(out, v.Error())
		}
		fmt.Fprintln(out, "exit nonzero by design: the auditor caught the broken scheduler")
		return 1
	default:
		fmt.Fprintf(os.Stderr, "unknown ablation %q (want nogrant or dropevent)\n", ablate)
		return 2
	}
}
