package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	r, ok := parseBench("schedact/internal/sim",
		"BenchmarkEventQueue/wheel \t29963110\t        38.65 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Name != "BenchmarkEventQueue/wheel" || r.Iterations != 29963110 {
		t.Fatalf("bad header: %+v", r)
	}
	want := map[string]float64{"ns/op": 38.65, "B/op": 0, "allocs/op": 0}
	for unit, v := range want {
		if r.Metrics[unit] != v {
			t.Fatalf("metric %q = %v, want %v", unit, r.Metrics[unit], v)
		}
	}
}

func TestParseBenchCustomMetric(t *testing.T) {
	r, ok := parseBench("schedact/internal/exp",
		"BenchmarkChaosSweep 	       2	 314662429 ns/op	        12.71 seeds/sec")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Metrics["seeds/sec"] != 12.71 {
		t.Fatalf("seeds/sec = %v, want 12.71", r.Metrics["seeds/sec"])
	}
}

func TestParseBenchRejectsHeaders(t *testing.T) {
	if _, ok := parseBench("p", "BenchmarkEventQueue"); ok {
		t.Fatal("bare benchmark header should not parse as a result")
	}
	if _, ok := parseBench("p", "BenchmarkFoo not-a-number"); ok {
		t.Fatal("malformed count should not parse")
	}
}

func docOf(pairs map[string]float64) Doc {
	d := Doc{}
	for name, ns := range pairs {
		d.Results = append(d.Results, Result{
			Pkg: "p", Name: name, Iterations: 1,
			Metrics: map[string]float64{"ns/op": ns},
		})
	}
	return d
}

func TestCompareFlagsRegressions(t *testing.T) {
	oldDoc := docOf(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100, "BenchmarkGone": 5})
	newDoc := docOf(map[string]float64{"BenchmarkA": 110, "BenchmarkB": 200, "BenchmarkNew": 7})
	var buf strings.Builder
	regressed := compare(&buf, oldDoc, newDoc, "ns/op", 0.25)
	if regressed != 1 {
		t.Fatalf("regressed = %d, want 1 (only B doubled)\n%s", regressed, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"BenchmarkB", "REGRESSED", "BenchmarkNew", "new", "BenchmarkGone", "dropped"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "BenchmarkA  REGRESSED") {
		t.Fatalf("10%% growth under a 25%% threshold flagged:\n%s", out)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	oldDoc := docOf(map[string]float64{"BenchmarkA": 100})
	newDoc := docOf(map[string]float64{"BenchmarkA": 60})
	var buf strings.Builder
	if r := compare(&buf, oldDoc, newDoc, "ns/op", 0.25); r != 0 {
		t.Fatalf("improvement counted as regression:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "-40.0%") {
		t.Fatalf("delta not rendered:\n%s", buf.String())
	}
}

// docOfMetric is docOf for an arbitrary unit.
func docOfMetric(metric string, pairs map[string]float64) Doc {
	d := Doc{}
	for name, v := range pairs {
		d.Results = append(d.Results, Result{
			Pkg: "p", Name: name, Iterations: 1,
			Metrics: map[string]float64{metric: v},
		})
	}
	return d
}

// TestCompareThroughputDirection pins the direction-aware gate: for a "/sec"
// metric (seeds/sec) a SHRINKING value regresses and a growing one passes —
// the mirror image of the ns/op gate.
func TestCompareThroughputDirection(t *testing.T) {
	oldDoc := docOfMetric("seeds/sec", map[string]float64{"BenchmarkSweepSlow": 20, "BenchmarkSweepFast": 20})
	newDoc := docOfMetric("seeds/sec", map[string]float64{"BenchmarkSweepSlow": 10, "BenchmarkSweepFast": 40})
	var buf strings.Builder
	if r := compare(&buf, oldDoc, newDoc, "seeds/sec", 0.25); r != 1 {
		t.Fatalf("regressed = %d, want 1 (only the halved sweep)\n%s", r, buf.String())
	}
	if !strings.Contains(buf.String(), "BenchmarkSweepSlow") || strings.Contains(buf.String(), "BenchmarkSweepFast  REGRESSED") {
		t.Fatalf("wrong benchmark flagged:\n%s", buf.String())
	}
}

func TestCompareMainSoftGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	for path, doc := range map[string]Doc{
		oldPath: docOf(map[string]float64{"BenchmarkA": 100}),
		newPath: docOf(map[string]float64{"BenchmarkA": 1000}),
	} {
		raw, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var buf strings.Builder
	if code := compareMain(&buf, oldPath, newPath, "ns/op", 0.25, false); code != 1 {
		t.Fatalf("hard gate exit = %d, want 1\n%s", code, buf.String())
	}
	buf.Reset()
	if code := compareMain(&buf, oldPath, newPath, "ns/op", 0.25, true); code != 0 {
		t.Fatalf("soft gate exit = %d, want 0\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "soft gate") {
		t.Fatalf("soft verdict missing:\n%s", buf.String())
	}
}
