package main

import "testing"

func TestParseBench(t *testing.T) {
	r, ok := parseBench("schedact/internal/sim",
		"BenchmarkEventQueue/wheel \t29963110\t        38.65 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Name != "BenchmarkEventQueue/wheel" || r.Iterations != 29963110 {
		t.Fatalf("bad header: %+v", r)
	}
	want := map[string]float64{"ns/op": 38.65, "B/op": 0, "allocs/op": 0}
	for unit, v := range want {
		if r.Metrics[unit] != v {
			t.Fatalf("metric %q = %v, want %v", unit, r.Metrics[unit], v)
		}
	}
}

func TestParseBenchCustomMetric(t *testing.T) {
	r, ok := parseBench("schedact/internal/exp",
		"BenchmarkChaosSweep 	       2	 314662429 ns/op	        12.71 seeds/sec")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Metrics["seeds/sec"] != 12.71 {
		t.Fatalf("seeds/sec = %v, want 12.71", r.Metrics["seeds/sec"])
	}
}

func TestParseBenchRejectsHeaders(t *testing.T) {
	if _, ok := parseBench("p", "BenchmarkEventQueue"); ok {
		t.Fatal("bare benchmark header should not parse as a result")
	}
	if _, ok := parseBench("p", "BenchmarkFoo not-a-number"); ok {
		t.Fatal("malformed count should not parse")
	}
}
