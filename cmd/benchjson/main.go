// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document on stdout, so benchmark numbers can be
// archived (BENCH.json via make bench-json) and diffed across commits
// without scraping the human format.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | benchjson > BENCH.json
//
// Each benchmark result line
//
//	BenchmarkEventQueue/wheel   29963110   38.65 ns/op   0 B/op   0 allocs/op
//
// becomes one entry with the surrounding goos/goarch/cpu/pkg context and a
// metrics map keyed by unit ("ns/op", "B/op", "allocs/op", plus any custom
// ReportMetric units such as "seeds/sec"). Non-benchmark lines (PASS, ok,
// test logs) are ignored, so piping full `go test` output is fine.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the whole report.
type Doc struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	doc := Doc{Results: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(pkg, line); ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench decodes one result line: name, iteration count, then
// value/unit pairs.
func parseBench(pkg, line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false // "BenchmarkFoo" header without a count
	}
	r := Result{Pkg: pkg, Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[f[i+1]] = v
	}
	return r, true
}
