// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document on stdout, so benchmark numbers can be
// archived (BENCH.json via make bench-json) and diffed across commits
// without scraping the human format.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | benchjson > BENCH.json
//
// Each benchmark result line
//
//	BenchmarkEventQueue/wheel   29963110   38.65 ns/op   0 B/op   0 allocs/op
//
// becomes one entry with the surrounding goos/goarch/cpu/pkg context and a
// metrics map keyed by unit ("ns/op", "B/op", "allocs/op", plus any custom
// ReportMetric units such as "seeds/sec"). Non-benchmark lines (PASS, ok,
// test logs) are ignored, so piping full `go test` output is fine.
//
// Compare mode diffs two such documents per benchmark and gates on
// regressions (make bench-diff):
//
//	benchjson -old BENCH.json -new run.json               # fails >25% ns/op growth
//	benchjson -old BENCH.json -new run.json -threshold 0.4
//	benchjson -old BENCH.json -new run.json -soft         # report-only (CI's 1-core runner)
//	benchjson -old BENCH.json -new run.json -metric seeds/sec   # throughput gate
//
// The gate is direction-aware: for "/sec" metrics (seeds/sec, runs/sec)
// higher is better, so a benchmark regresses when the value SHRINKS past the
// threshold; for every other unit (ns/op, B/op, allocs/op) growth regresses.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the whole report.
type Doc struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	oldPath := flag.String("old", "", "baseline document for compare mode (e.g. BENCH.json)")
	newPath := flag.String("new", "", "candidate document for compare mode")
	metric := flag.String("metric", "ns/op", "metric to gate on in compare mode (\"/sec\" units gate on shrinkage, all others on growth)")
	threshold := flag.Float64("threshold", 0.25, "relative growth of -metric above which a benchmark counts as regressed")
	soft := flag.Bool("soft", false, "compare mode reports deltas but always exits 0")
	flag.Parse()

	if (*oldPath == "") != (*newPath == "") {
		fmt.Fprintln(os.Stderr, "benchjson: -old and -new must be given together")
		os.Exit(2)
	}
	if *oldPath != "" {
		os.Exit(compareMain(os.Stdout, *oldPath, *newPath, *metric, *threshold, *soft))
	}
	convertMain()
}

// convertMain is the original mode: bench text on stdin, JSON on stdout.
func convertMain() {
	doc := Doc{Results: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(pkg, line); ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench decodes one result line: name, iteration count, then
// value/unit pairs.
func parseBench(pkg, line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false // "BenchmarkFoo" header without a count
	}
	r := Result{Pkg: pkg, Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[f[i+1]] = v
	}
	return r, true
}

// compareMain loads two documents and renders the per-benchmark delta table,
// returning the process exit code: 1 when any benchmark's gate metric grew
// past the threshold (unless soft), 2 on malformed input.
func compareMain(w io.Writer, oldPath, newPath, metric string, threshold float64, soft bool) int {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	regressed := compare(w, oldDoc, newDoc, metric, threshold)
	if regressed > 0 {
		verdict := "FAIL"
		if soft {
			verdict = "soft gate: reporting only"
		}
		fmt.Fprintf(w, "%d benchmark(s) regressed more than %.0f%% on %s (%s)\n",
			regressed, threshold*100, metric, verdict)
		if !soft {
			return 1
		}
	}
	return 0
}

// key identifies a benchmark across documents.
func key(r Result) string { return r.Pkg + " " + r.Name }

// higherIsBetter reports the gate direction for a metric: rate units
// ("seeds/sec", "runs/sec", "MB/sec") improve upward, everything else
// (ns/op, B/op, allocs/op) improves downward.
func higherIsBetter(metric string) bool { return strings.HasSuffix(metric, "/sec") }

// compare writes one line per benchmark present in either document and
// returns how many exceeded the threshold on the gate metric.
func compare(w io.Writer, oldDoc, newDoc Doc, metric string, threshold float64) (regressed int) {
	olds := make(map[string]Result, len(oldDoc.Results))
	for _, r := range oldDoc.Results {
		olds[key(r)] = r
	}
	width := len("benchmark")
	for _, r := range newDoc.Results {
		if n := len(r.Name); n > width {
			width = n
		}
	}
	fmt.Fprintf(w, "%-*s %14s %14s %9s   (%s)\n", width, "benchmark", "old", "new", "delta", metric)
	seen := make(map[string]bool, len(newDoc.Results))
	for _, nr := range newDoc.Results {
		seen[key(nr)] = true
		or, ok := olds[key(nr)]
		if !ok {
			fmt.Fprintf(w, "%-*s %14s %14.4g %9s\n", width, nr.Name, "-", nr.Metrics[metric], "new")
			continue
		}
		ov, nv := or.Metrics[metric], nr.Metrics[metric]
		if ov == 0 {
			fmt.Fprintf(w, "%-*s %14.4g %14.4g %9s\n", width, nr.Name, ov, nv, "n/a")
			continue
		}
		delta := (nv - ov) / ov
		worse := delta > threshold
		if higherIsBetter(metric) {
			worse = delta < -threshold
		}
		mark := ""
		if worse {
			regressed++
			mark = "  REGRESSED"
		}
		fmt.Fprintf(w, "%-*s %14.4g %14.4g %+8.1f%%%s\n", width, nr.Name, ov, nv, delta*100, mark)
	}
	var gone []string
	for k := range olds {
		if !seen[k] {
			gone = append(gone, olds[k].Name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(w, "%-*s %14s %14s %9s\n", width, name, "-", "-", "dropped")
	}
	return regressed
}

// loadDoc reads one benchjson document from disk.
func loadDoc(path string) (Doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Doc{}, err
	}
	var d Doc
	if err := json.Unmarshal(raw, &d); err != nil {
		return Doc{}, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}
