// Command satrace runs a small scenario on the scheduler-activation kernel
// and dumps the kernel's scheduling trace: every upcall, downcall, grant,
// take, block, and unblock, with the processor it happened on. Useful for
// seeing the Table 2/Table 3 protocol in action.
//
// Usage:
//
//	satrace                 # two competing N-body apps, first 60ms
//	satrace -ms 200         # trace a longer window
//	satrace -io             # a single app with heavy I/O (blocked/unblocked traffic)
//	satrace -json           # Chrome/Perfetto trace_event JSON on stdout
package main

import (
	"flag"
	"fmt"
	"os"

	"schedact/internal/apps/nbody"
	"schedact/internal/core"
	"schedact/internal/sim"
	"schedact/internal/trace"
	"schedact/internal/uthread"
)

func main() {
	ms := flag.Int("ms", 60, "milliseconds of virtual time to trace")
	io := flag.Bool("io", false, "trace an I/O-heavy single application instead of two competing ones")
	jsonOut := flag.Bool("json", false, "emit Chrome/Perfetto trace_event JSON instead of the text dump")
	flag.Parse()

	eng := sim.NewEngine()
	defer eng.Close()
	tr := trace.New(100000)
	k := core.New(eng, core.Config{CPUs: 4, Costs: nil, Trace: tr})

	cfg := nbody.Config{N: 96, Steps: 1, Seed: 7}
	if *io {
		cfg.MemFraction = 0.4
		s := uthread.OnActivations(k, "app", 0, 4, uthread.Options{})
		nbody.Launch(nbody.UThreadSystem{S: s}, cfg)
		s.Start()
	} else {
		for i := 0; i < 2; i++ {
			s := uthread.OnActivations(k, fmt.Sprintf("app%d", i), 0, 4, uthread.Options{})
			nbody.Launch(nbody.UThreadSystem{S: s}, cfg)
			s.Start()
		}
	}
	horizon := sim.Time(sim.Duration(*ms) * sim.Millisecond)
	eng.RunUntil(horizon)
	if *jsonOut {
		if err := trace.WriteChrome(os.Stdout, tr.Entries(), horizon.Us()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	tr.Dump(os.Stdout)
	fmt.Printf("\n%d events in %dms of virtual time; kernel stats: %+v\n",
		len(tr.Entries()), *ms, k.Stats)
}
