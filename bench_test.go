// Package schedact's benchmark harness: one benchmark per table and figure
// of the paper's evaluation. The simulator is deterministic, so the
// interesting output is not Go's ns/op but the reported custom metrics —
// virtual microseconds per thread operation, speedups, execution times —
// which are the quantities the paper's tables and figures plot. Run with:
//
//	go test -bench=. -benchmem
package schedact

import (
	"fmt"
	"testing"

	"schedact/internal/apps/micro"
	"schedact/internal/exp"
	"schedact/internal/machine"
	"schedact/internal/sim"
)

// benchMicro runs the Table 1/4 microbenchmarks for one system, reporting
// the virtual latencies the paper tabulates.
func benchMicro(b *testing.B, sys micro.System, paperNF, paperSW float64) {
	var r micro.Result
	for i := 0; i < b.N; i++ {
		r = micro.Run(sys, nil)
	}
	b.ReportMetric(sim.DurUs(r.NullFork), "vus-nullfork")
	b.ReportMetric(sim.DurUs(r.SignalWait), "vus-sigwait")
	b.ReportMetric(paperNF, "paper-nullfork")
	b.ReportMetric(paperSW, "paper-sigwait")
}

// Table 1 (and the first three rows of Table 4).
func BenchmarkTable1FastThreads(b *testing.B)  { benchMicro(b, micro.FastThreadsKT, 34, 37) }
func BenchmarkTable1TopazThreads(b *testing.B) { benchMicro(b, micro.TopazThreads, 948, 441) }
func BenchmarkTable1UltrixProcesses(b *testing.B) {
	benchMicro(b, micro.UltrixProcesses, 11300, 1840)
}

// Table 4's new row: FastThreads on scheduler activations.
func BenchmarkTable4SchedulerActivations(b *testing.B) {
	benchMicro(b, micro.FastThreadsSA, 37, 42)
}

// §5.1 ablation: explicit critical-section flags instead of the
// zero-overhead marking (paper: 49µs / 48µs).
func BenchmarkAblationExplicitFlags(b *testing.B) {
	var r micro.Result
	for i := 0; i < b.N; i++ {
		r = micro.RunAblation(nil)
	}
	b.ReportMetric(sim.DurUs(r.NullFork), "vus-nullfork")
	b.ReportMetric(sim.DurUs(r.SignalWait), "vus-sigwait")
	b.ReportMetric(49, "paper-nullfork")
	b.ReportMetric(48, "paper-sigwait")
}

// §5.2: signal-wait forced through the kernel (paper: 2.4ms on the
// prototype; commensurate with Topaz if tuned).
func BenchmarkUpcallSignalWait(b *testing.B) {
	var proto, tuned sim.Duration
	for i := 0; i < b.N; i++ {
		proto = micro.UpcallSignalWait(machine.DefaultCosts())
		tuned = micro.UpcallSignalWait(machine.TunedCosts())
	}
	b.ReportMetric(sim.DurMs(proto), "vms-prototype")
	b.ReportMetric(sim.DurUs(tuned), "vus-tuned")
	b.ReportMetric(2.4, "paper-vms")
}

// Figure 1: N-body speedup versus processors, 100% memory, uniprogrammed.
// Reports each system's speedup at 1 and 6 processors plus the full series
// via sub-benchmarks.
func BenchmarkFigure1(b *testing.B) {
	var r exp.Figure1Result
	for i := 0; i < b.N; i++ {
		r = exp.Figure1()
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			b.ReportMetric(p.Y, fmt.Sprintf("speedup-%s-p%.0f", slug(string(s.System)), p.X))
		}
	}
}

// Figure 2: N-body execution time versus % of memory available, 6 CPUs.
func BenchmarkFigure2(b *testing.B) {
	var r exp.Figure2Result
	for i := 0; i < b.N; i++ {
		r = exp.Figure2()
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			b.ReportMetric(p.Y, fmt.Sprintf("vsec-%s-mem%.0f", slug(string(s.System)), p.X))
		}
	}
}

// Table 5: speedup at multiprogramming level 2 (paper: Topaz 1.29, orig
// FastThreads 1.26, new FastThreads 2.45; maximum possible 3.0).
func BenchmarkTable5(b *testing.B) {
	var rows []exp.Table5Row
	for i := 0; i < b.N; i++ {
		rows = exp.Table5()
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, "speedup-"+slug(string(r.System)))
		b.ReportMetric(r.Paper, "paper-"+slug(string(r.System)))
	}
}

// §4.1 ablation: allocation policy.
func BenchmarkAblationAllocatorPolicy(b *testing.B) {
	var r exp.AllocatorAblationResult
	for i := 0; i < b.N; i++ {
		r = exp.AllocatorAblation()
	}
	b.ReportMetric(r.SpaceSharing.SpeedupAvg, "speedup-space-sharing")
	b.ReportMetric(r.FirstCome.SpeedupAvg, "speedup-first-come")
	b.ReportMetric(r.SpaceSharing.Spread, "spread-space-sharing")
	b.ReportMetric(r.FirstCome.Spread, "spread-first-come")
}

// §4.2 ablation: idle hysteresis.
func BenchmarkAblationHysteresis(b *testing.B) {
	var r exp.HysteresisAblationResult
	for i := 0; i < b.N; i++ {
		r = exp.HysteresisAblation()
	}
	b.ReportMetric(float64(r.WithHysteresis.Takes), "reallocations-with")
	b.ReportMetric(float64(r.WithoutHysteresis.Takes), "reallocations-without")
}

// slug compresses a system name for metric labels.
func slug(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+'a'-'A')
		}
	}
	return string(out)
}

// --- engine microbenchmarks: the simulation hot path itself ---
//
// These measure the discrete-event substrate every experiment funnels
// through: scheduling+firing one event, one coroutine park/unpark round
// trip, and scheduling+cancelling an event while the timeline advances.

func BenchmarkEngineSchedule(b *testing.B) {
	e := sim.NewEngine()
	defer e.Close()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(sim.Microsecond, "bench", fn)
		e.Step()
	}
}

func BenchmarkCoroutineHandoff(b *testing.B) {
	e := sim.NewEngine()
	defer e.Close()
	co := e.Go("ping", func(c *sim.Coroutine) {
		for {
			c.Park("ping")
		}
	})
	co.Unpark()
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		co.Unpark()
		e.Step()
	}
}

func BenchmarkEventCancel(b *testing.B) {
	e := sim.NewEngine()
	defer e.Close()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doomed := e.After(2*sim.Microsecond, "doomed", fn)
		e.After(sim.Microsecond, "kept", fn)
		doomed.Cancel()
		e.Step()
	}
}
