module schedact

go 1.24
